module G = Aig.Graph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bits_of_int n v = Array.init n (fun k -> v lsr k land 1 = 1)

(* Compare an AIG builder against a Bitvec oracle on random inputs. *)
let check_against_oracle ~name ~num_inputs ~samples build oracle =
  let g = G.create ~num_inputs () in
  G.set_output g (build g);
  let st = Random.State.make [| Hashtbl.hash name |] in
  for _ = 1 to samples do
    let bits = Array.init num_inputs (fun _ -> Random.State.bool st) in
    check_bool name (oracle bits) (G.eval g bits)
  done

let test_adder_vs_bitvec () =
  List.iter
    (fun k ->
      check_against_oracle
        ~name:(Printf.sprintf "adder-%d" k)
        ~num_inputs:(2 * k) ~samples:200
        (fun g ->
          let a = Array.init k (G.input g) and b = Array.init k (fun i -> G.input g (k + i)) in
          let sums, carry = Synth.Arith.adder g a b in
          G.xor_ g carry sums.(k - 1))
        (fun bits ->
          let a = Bitvec.of_bits (Array.sub bits 0 k)
          and b = Bitvec.of_bits (Array.sub bits k k) in
          let sum = Bitvec.add (Bitvec.zero_extend a (k + 1)) (Bitvec.zero_extend b (k + 1)) in
          Bitvec.get sum k <> Bitvec.get sum (k - 1)))
    [ 4; 9; 16 ]

let test_subtractor_borrow_is_less_than () =
  let k = 8 in
  check_against_oracle ~name:"borrow" ~num_inputs:(2 * k) ~samples:300
    (fun g ->
      let a = Array.init k (G.input g) and b = Array.init k (fun i -> G.input g (k + i)) in
      Synth.Arith.less_than g a b)
    (fun bits ->
      Bitvec.compare
        (Bitvec.of_bits (Array.sub bits 0 k))
        (Bitvec.of_bits (Array.sub bits k k))
      < 0)

let test_multiplier_vs_bitvec () =
  let k = 5 in
  for bit = 0 to (2 * k) - 1 do
    check_against_oracle
      ~name:(Printf.sprintf "mult-bit%d" bit)
      ~num_inputs:(2 * k) ~samples:100
      (fun g ->
        let a = Array.init k (G.input g) and b = Array.init k (fun i -> G.input g (k + i)) in
        (Synth.Arith.multiplier g a b).(bit))
      (fun bits ->
        Bitvec.get
          (Bitvec.mul
             (Bitvec.of_bits (Array.sub bits 0 k))
             (Bitvec.of_bits (Array.sub bits k k)))
          bit)
  done

let test_divider_vs_bitvec () =
  let k = 6 in
  let g = G.create ~num_inputs:(2 * k) () in
  let a = Array.init k (G.input g) and b = Array.init k (fun i -> G.input g (k + i)) in
  let quotient, remainder = Synth.Arith.divider g a b in
  let st = Random.State.make [| 61 |] in
  for _ = 1 to 300 do
    let va = Random.State.int st (1 lsl k) in
    let vb = Random.State.int st (1 lsl k) in
    let bits = Array.init (2 * k) (fun i -> if i < k then va lsr i land 1 = 1 else vb lsr (i - k) land 1 = 1) in
    let expected_q, expected_r =
      if vb = 0 then ((1 lsl k) - 1, va) else (va / vb, va mod vb)
    in
    Array.iteri
      (fun i lit ->
        G.set_output g lit;
        check_bool "quotient bit" (expected_q lsr i land 1 = 1) (G.eval g bits))
      quotient;
    Array.iteri
      (fun i lit ->
        G.set_output g lit;
        check_bool "remainder bit" (expected_r lsr i land 1 = 1) (G.eval g bits))
      remainder
  done

let test_square_root_vs_bitvec () =
  List.iter
    (fun k ->
      let g = G.create ~num_inputs:k () in
      let root = Synth.Arith.square_root g (Array.init k (G.input g)) in
      check_int "root width" ((k + 1) / 2) (Array.length root);
      for v = 0 to (1 lsl k) - 1 do
        let bits = bits_of_int k v in
        let expected = int_of_float (sqrt (float_of_int v)) in
        Array.iteri
          (fun i lit ->
            G.set_output g lit;
            check_bool
              (Printf.sprintf "sqrt(%d) bit %d" v i)
              (expected lsr i land 1 = 1)
              (G.eval g bits))
          root
      done)
    [ 4; 7; 8 ]

let test_parity_popcount_equals () =
  let n = 9 in
  check_against_oracle ~name:"parity" ~num_inputs:n ~samples:200
    (fun g -> Synth.Arith.parity g (Array.init n (G.input g)))
    (fun bits -> Array.fold_left ( <> ) false bits);
  (* popcount: verify every output bit. *)
  let g = G.create ~num_inputs:n () in
  let count = Synth.Arith.popcount g (Array.init n (G.input g)) in
  check_int "popcount width" 4 (Array.length count);
  for v = 0 to (1 lsl n) - 1 do
    let bits = bits_of_int n v in
    let expected = Array.fold_left (fun acc b -> acc + if b then 1 else 0) 0 bits in
    Array.iteri
      (fun i lit ->
        G.set_output g lit;
        check_bool "popcount bit" (expected lsr i land 1 = 1) (G.eval g bits))
      count
  done

let test_equals_const () =
  let g = G.create ~num_inputs:4 () in
  let word = Array.init 4 (G.input g) in
  G.set_output g (Synth.Arith.equals_const g word 5);
  for v = 0 to 15 do
    check_bool "equals 5" (v = 5) (G.eval g (bits_of_int 4 v))
  done;
  check_int "too-large constant is false" G.const_false
    (Synth.Arith.equals_const g word 16)

let test_majority_exact () =
  List.iter
    (fun n ->
      let g = G.create ~num_inputs:n () in
      G.set_output g (Synth.Majority.majority g (List.init n (G.input g)));
      for v = 0 to (1 lsl n) - 1 do
        let bits = bits_of_int n v in
        let ones = Array.fold_left (fun a b -> a + if b then 1 else 0) 0 bits in
        check_bool
          (Printf.sprintf "majority-%d" n)
          (2 * ones > n)
          (G.eval g bits)
      done)
    [ 1; 3; 5; 7; 9 ]

let test_majority5_tree_structure () =
  let g = G.create ~num_inputs:125 () in
  let lits = Array.init 125 (G.input g) in
  G.set_output g (Synth.Majority.majority5_tree g lits);
  (* Unanimous inputs must decide the vote at every layer. *)
  check_bool "all ones" true (G.eval g (Array.make 125 true));
  check_bool "all zeros" false (G.eval g (Array.make 125 false));
  Alcotest.check_raises "needs 125"
    (Invalid_argument "Majority.majority5_tree: need exactly 125 inputs")
    (fun () -> ignore (Synth.Majority.majority5_tree g (Array.sub lits 0 25)))

let test_symmetric_signature () =
  (* Signature 0011 over 3 inputs: true iff popcount >= 2. *)
  let g = Synth.Symmetric.of_signature "0011" in
  for v = 0 to 7 do
    let bits = bits_of_int 3 v in
    let ones = Array.fold_left (fun a b -> a + if b then 1 else 0) 0 bits in
    check_bool "symfun" (ones >= 2) (G.eval g bits)
  done

let test_sop_synthesis () =
  let cover = Sop.Cover.of_strings [ "1-0"; "011" ] in
  let g = Synth.Sop_synth.aig_of_cover cover in
  for v = 0 to 7 do
    let bits = bits_of_int 3 v in
    check_bool "cover semantics" (Sop.Cover.covers_minterm cover bits) (G.eval g bits)
  done;
  let gc = Synth.Sop_synth.aig_of_cover ~complemented:true cover in
  for v = 0 to 7 do
    let bits = bits_of_int 3 v in
    check_bool "complemented" (not (Sop.Cover.covers_minterm cover bits)) (G.eval gc bits)
  done

let test_lut_synthesis () =
  let st = Random.State.make [| 77 |] in
  for _ = 1 to 30 do
    let k = 1 + Random.State.int st 5 in
    let truth = Array.init (1 lsl k) (fun _ -> Random.State.bool st) in
    let g = G.create ~num_inputs:k () in
    G.set_output g
      (Synth.Lut_synth.lit_of_lut g ~inputs:(Array.init k (G.input g)) ~truth);
    for v = 0 to (1 lsl k) - 1 do
      check_bool "lut semantics" truth.(v) (G.eval g (bits_of_int k v))
    done
  done

let prop_espresso_cover_synth =
  QCheck.Test.make ~count:40 ~name:"espresso cover circuit is exact on care set"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let n = 4 + Random.State.int st 3 in
      let table = Hashtbl.create 32 in
      for _ = 1 to 30 do
        Hashtbl.replace table (Random.State.int st (1 lsl n)) (Random.State.bool st)
      done;
      let rows =
        Hashtbl.fold
          (fun key y acc -> (Array.init n (fun k -> key lsr k land 1 = 1), y) :: acc)
          table []
      in
      let d = Data.Dataset.create ~num_inputs:n rows in
      let cover, complemented = Sop.Espresso.minimize_best_polarity d in
      let g = Synth.Sop_synth.aig_of_cover ~complemented cover in
      List.for_all
        (fun j -> G.eval g (Data.Dataset.row d j) = Data.Dataset.output_bit d j)
        (List.init (Data.Dataset.num_samples d) Fun.id))

let suites =
  [ ( "synth",
      [ Alcotest.test_case "adder vs bitvec" `Quick test_adder_vs_bitvec;
        Alcotest.test_case "borrow is less-than" `Quick test_subtractor_borrow_is_less_than;
        Alcotest.test_case "multiplier vs bitvec" `Quick test_multiplier_vs_bitvec;
        Alcotest.test_case "divider vs reference" `Quick test_divider_vs_bitvec;
        Alcotest.test_case "square root vs reference" `Quick test_square_root_vs_bitvec;
        Alcotest.test_case "parity and popcount" `Quick test_parity_popcount_equals;
        Alcotest.test_case "equals const" `Quick test_equals_const;
        Alcotest.test_case "exact majority" `Quick test_majority_exact;
        Alcotest.test_case "majority5 tree" `Quick test_majority5_tree_structure;
        Alcotest.test_case "symmetric signature" `Quick test_symmetric_signature;
        Alcotest.test_case "sop synthesis" `Quick test_sop_synthesis;
        Alcotest.test_case "lut synthesis" `Quick test_lut_synthesis ]
      @ [ QCheck_alcotest.to_alcotest ~long:false prop_espresso_cover_synth ] ) ]
