module D = Data.Dataset

let check_bool = Alcotest.(check bool)

let full_table n f =
  D.create ~num_inputs:n
    (List.init (1 lsl n) (fun i ->
         let bits = Array.init n (fun k -> i lsr k land 1 = 1) in
         (bits, f bits)))

let small_params =
  { Cgp.default_params with Cgp.num_nodes = 60; generations = 800; seed = 2 }

let test_random_evolution_learns_and () =
  let d = full_table 3 (fun b -> b.(0) && b.(1)) in
  let _, acc = Cgp.evolve small_params d in
  check_bool "learns AND" true (acc >= 0.9)

let test_xaig_learns_xor () =
  let d = full_table 3 (fun b -> b.(0) <> b.(1)) in
  let _, acc =
    Cgp.evolve { small_params with Cgp.function_set = Cgp.Xaig_ops } d
  in
  check_bool "learns XOR" true (acc >= 0.9)

let test_bootstrap_preserves_seed_function () =
  (* A genome bootstrapped from an AIG computes the same function before
     any evolution. *)
  let g = Aig.Graph.create ~num_inputs:4 () in
  let x = Array.init 4 (Aig.Graph.input g) in
  Aig.Graph.set_output g
    (Aig.Graph.or_ g (Aig.Graph.and_ g x.(0) x.(1)) (Aig.Graph.xor_ g x.(2) x.(3)));
  let st = Random.State.make [| 1 |] in
  let genome = Cgp.of_aig st g in
  let d = full_table 4 (fun b -> b.(0) && b.(1) || (b.(2) <> b.(3))) in
  check_bool "same function" true (Cgp.accuracy genome d = 1.0);
  (* And converting back gives the same function again. *)
  let g' = Cgp.to_aig genome in
  for v = 0 to 15 do
    let bits = Array.init 4 (fun k -> v lsr k land 1 = 1) in
    check_bool "roundtrip" (Aig.Graph.eval g bits) (Aig.Graph.eval g' bits)
  done

let test_bootstrap_never_worse () =
  (* Elitist (1+lambda): evolving a bootstrapped genome cannot lose
     training accuracy on the full set. *)
  let d = full_table 5 (fun b -> (b.(0) && b.(2)) || b.(4)) in
  let tree = Dtree.Train.train Dtree.Train.default_params d in
  let seed_aig = Synth.Tree_synth.aig_of_tree ~num_inputs:5 tree in
  let st = Random.State.make [| 2 |] in
  let genome = Cgp.of_aig st seed_aig in
  let before = Cgp.accuracy genome d in
  let evolved, after =
    Cgp.evolve ~initial:genome
      { small_params with Cgp.generations = 200 }
      d
  in
  check_bool "not worse than seed" true (after >= before -. 1e-9);
  check_bool "active gates positive" true (Cgp.num_active evolved >= 0)

let test_predict_mask_consistent_with_aig () =
  let d = full_table 4 (fun b -> b.(1) <> (b.(0) && b.(3))) in
  let genome, _ = Cgp.evolve { small_params with Cgp.generations = 100 } d in
  let aig = Cgp.to_aig genome in
  let mask = Cgp.predict_mask genome (D.columns d) in
  for j = 0 to D.num_samples d - 1 do
    check_bool "genome vs circuit" (Aig.Graph.eval aig (D.row d j)) (Words.get mask j)
  done

let test_minibatch_mode_runs () =
  let d = full_table 5 (fun b -> b.(0)) in
  let _, acc =
    Cgp.evolve
      { small_params with Cgp.batch_size = Some 8; change_batch_every = 50 }
      d
  in
  check_bool "learns with batches" true (acc >= 0.8)

let test_evolve_pool_deterministic () =
  (* Evolution must be byte-identical for any jobs count: mutation and
     selection are sequential, only the pure fitness evaluations fan
     out. *)
  let d = full_table 4 (fun b -> (b.(0) && b.(1)) <> b.(2)) in
  let params = { small_params with Cgp.generations = 300; lambda = 6 } in
  let run ?pool () = Cgp.evolve ?pool params d in
  let g_seq, acc_seq = run () in
  let g_pool, acc_pool =
    Parallel.Pool.with_pool ~jobs:4 (fun pool -> run ~pool ())
  in
  let g_intra, acc_intra =
    Parallel.Pool.with_pool ~jobs:3 (fun pool ->
        Parallel.Pool.with_intra pool (fun () -> run ()))
  in
  check_bool "accuracy pool = sequential" true (acc_seq = acc_pool);
  check_bool "accuracy ambient = sequential" true (acc_seq = acc_intra);
  let aag g = Aig.Io.to_string (Cgp.to_aig g) in
  Alcotest.(check string) "identical circuits" (aag g_seq) (aag g_pool);
  Alcotest.(check string) "identical circuits (ambient)" (aag g_seq)
    (aag g_intra)

let suites =
  [ ( "cgp",
      [ Alcotest.test_case "random evolution AND" `Quick test_random_evolution_learns_and;
        Alcotest.test_case "evolve pool deterministic" `Quick
          test_evolve_pool_deterministic;
        Alcotest.test_case "xaig XOR" `Quick test_xaig_learns_xor;
        Alcotest.test_case "bootstrap preserves function" `Quick
          test_bootstrap_preserves_seed_function;
        Alcotest.test_case "bootstrap never worse" `Quick test_bootstrap_never_worse;
        Alcotest.test_case "genome vs circuit" `Quick
          test_predict_mask_consistent_with_aig;
        Alcotest.test_case "mini-batch mode" `Quick test_minibatch_mode_runs ] ) ]
