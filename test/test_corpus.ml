(* Tests for the benchmark corpus factory: the binary container format,
   shard partitioning, and the sharded-run / merged-journal pipeline's
   byte-identity with an unsharded run. *)

module S = Benchgen.Suite
module F = Benchgen.Families
module CF = Corpus.Format
module D = Data.Dataset

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let temp_path suffix =
  let p = Filename.temp_file "lsml-corpus" suffix in
  Sys.remove p;
  p

let with_temp suffix f =
  let p = temp_path suffix in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists p then Sys.remove p)
    (fun () -> f p)

let slurp p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spit p s =
  let oc = open_out_bin p in
  output_string oc s;
  close_out oc

let same_dataset a b =
  D.num_inputs a = D.num_inputs b
  && D.num_samples a = D.num_samples b
  &&
  let ca = D.columns a and cb = D.columns b in
  let oa = D.outputs a and ob = D.outputs b in
  let ok = ref true in
  for j = 0 to D.num_samples a - 1 do
    if Words.get oa j <> Words.get ob j then ok := false;
    for i = 0 to D.num_inputs a - 1 do
      if Words.get ca.(i) j <> Words.get cb.(i) j then ok := false
    done
  done;
  !ok

let small_config =
  {
    Corpus.Gen.count = 10;
    seed = 5;
    sizes = { S.train = 40; valid = 20; test = 20 };
    families = F.all_families;
    noise_sweep = [ 0; 100 ];
  }

(* ---- Format ---- *)

let test_format_roundtrip () =
  with_temp ".lsmlc" @@ fun path ->
  Corpus.Gen.generate_file ~path small_config;
  let specs = Array.of_list (Corpus.Gen.specs small_config) in
  CF.with_file path @@ fun t ->
  check_int "count" 10 (CF.count t);
  check_string "meta" (Corpus.Gen.meta_of small_config) (CF.meta t);
  for i = 0 to CF.count t - 1 do
    let e = CF.entry t i in
    let b = F.benchmark_of ~id:i specs.(i) in
    check_string "name" b.S.name e.CF.name;
    check_string "category" (S.category_name b.S.category) e.CF.category;
    check_int "inputs" b.S.num_inputs e.CF.num_inputs;
    let fresh =
      F.instantiate ~sizes:small_config.Corpus.Gen.sizes ~id:i specs.(i)
    in
    let train, valid, test = CF.read_datasets t i in
    check_bool "train bits" true (same_dataset fresh.S.train train);
    check_bool "valid bits" true (same_dataset fresh.S.valid valid);
    check_bool "test bits" true (same_dataset fresh.S.test test)
  done

let test_format_seek () =
  (* Reading out of order must decode the same bits: offsets come from
     the index, not from sequential consumption. *)
  with_temp ".lsmlc" @@ fun path ->
  Corpus.Gen.generate_file ~path small_config;
  let specs = Array.of_list (Corpus.Gen.specs small_config) in
  CF.with_file path @@ fun t ->
  List.iter
    (fun i ->
      let fresh =
        F.instantiate ~sizes:small_config.Corpus.Gen.sizes ~id:i specs.(i)
      in
      let train, _, _ = CF.read_datasets t i in
      check_bool
        (Printf.sprintf "benchmark %d by seek" i)
        true
        (same_dataset fresh.S.train train))
    [ 7; 2; 9; 0 ]

let expect_parse_error what f =
  match f () with
  | exception CF.Parse_error _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Parse_error, got %s" what
        (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Parse_error, parsed fine" what

let test_format_truncation () =
  with_temp ".lsmlc" @@ fun path ->
  Corpus.Gen.generate_file ~path small_config;
  let bytes = slurp path in
  with_temp ".trunc" @@ fun bad ->
  (* Cut inside the last blob: the index declares extents past EOF. *)
  spit bad (String.sub bytes 0 (String.length bytes - 10));
  expect_parse_error "truncated blob" (fun () -> CF.open_file bad);
  (* Cut inside the index itself. *)
  spit bad (String.sub bytes 0 40);
  expect_parse_error "truncated index" (fun () -> CF.open_file bad);
  (* Empty file. *)
  spit bad "";
  expect_parse_error "empty file" (fun () -> CF.open_file bad)

let test_format_bad_magic_version () =
  with_temp ".lsmlc" @@ fun path ->
  Corpus.Gen.generate_file ~path small_config;
  let bytes = Bytes.of_string (slurp path) in
  with_temp ".bad" @@ fun bad ->
  let corrupt pos c =
    let b = Bytes.copy bytes in
    Bytes.set b pos c;
    spit bad (Bytes.to_string b)
  in
  corrupt 0 'X';
  (match CF.open_file bad with
  | exception CF.Parse_error { offset; _ } -> check_int "magic offset" 0 offset
  | _ -> Alcotest.fail "bad magic accepted");
  corrupt 8 '\xff';
  (match CF.open_file bad with
  | exception CF.Parse_error { offset; _ } -> check_int "version offset" 8 offset
  | _ -> Alcotest.fail "bad version accepted")

(* ---- Shard ---- *)

let test_shard_parse () =
  (match Corpus.Shard.parse "2/4" with
  | Ok s ->
      check_int "index" 2 s.Corpus.Shard.index;
      check_int "count" 4 s.Corpus.Shard.count;
      check_string "print" "2/4" (Corpus.Shard.to_string s)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      check_bool bad true
        (match Corpus.Shard.parse bad with Error _ -> true | Ok _ -> false))
    [ "0/4"; "5/4"; "x/y"; "3"; "1/0"; "-1/2"; "1/2/3" ]

let test_shard_coverage () =
  (* For every shard count, the shards must partition the corpus: each
     index in exactly one shard, each shard ascending. *)
  let total = 17 in
  for n = 1 to 6 do
    let shards =
      List.init n (fun k ->
          Corpus.Shard.select ~shard:{ Corpus.Shard.index = k + 1; count = n }
            total)
    in
    List.iter
      (fun sel -> check_bool "ascending" true (List.sort compare sel = sel))
      shards;
    let all = List.sort compare (List.concat shards) in
    check_bool
      (Printf.sprintf "%d shards cover exactly once" n)
      true
      (all = List.init total Fun.id)
  done;
  check_int "unsharded selects all" 17
    (List.length (Corpus.Shard.select total))

(* ---- Generator families ---- *)

let test_families_oracle () =
  let spec =
    { F.family = F.Threshold; num_inputs = 8; param = 5; fseed = 11;
      noise_permille = 0 }
  in
  let popcount bits = Array.fold_left (fun a b -> if b then a + 1 else a) 0 bits in
  let st = Random.State.make [| 42 |] in
  for _ = 1 to 50 do
    let bits = Array.init 8 (fun _ -> Random.State.bool st) in
    check_bool "threshold semantics" (popcount bits >= 5) (F.oracle spec bits);
    check_bool "deterministic" (F.oracle spec bits) (F.oracle spec bits)
  done;
  (* noise=1000 flips every label; noise is deterministic per vector. *)
  let noisy = { spec with F.noise_permille = 1000 } in
  for _ = 1 to 50 do
    let bits = Array.init 8 (fun _ -> Random.State.bool st) in
    check_bool "full noise complements" (not (F.oracle spec bits))
      (F.oracle noisy bits)
  done

let test_gen_parse_helpers () =
  (match Corpus.Gen.parse_families "arith, threshold" with
  | Ok [ F.Arith_cone; F.Threshold ] -> ()
  | Ok _ -> Alcotest.fail "wrong families"
  | Error e -> Alcotest.fail e);
  check_bool "unknown family" true
    (match Corpus.Gen.parse_families "arith,nope" with
    | Error _ -> true
    | Ok _ -> false);
  (match Corpus.Gen.parse_noise "0,25,100" with
  | Ok [ 0; 25; 100 ] -> ()
  | Ok _ -> Alcotest.fail "wrong noise"
  | Error e -> Alcotest.fail e);
  check_bool "noise out of range" true
    (match Corpus.Gen.parse_noise "0,2000" with Error _ -> true | Ok _ -> false)

(* ---- Journal shard tags ---- *)

let test_journal_shard_tags () =
  with_temp ".journal" @@ fun path ->
  ignore (Resil.Journal.create ~shard:(2, 3) ~path ~meta:"cfg" ());
  check_bool "same shard loads" true
    (match Resil.Journal.load ~shard:(2, 3) ~path ~meta:"cfg" () with
    | Ok _ -> true
    | Error _ -> false);
  check_bool "unsharded load rejected" true
    (match Resil.Journal.load ~path ~meta:"cfg" () with
    | Error _ -> true
    | Ok _ -> false);
  check_bool "other shard rejected" true
    (match Resil.Journal.load ~shard:(1, 3) ~path ~meta:"cfg" () with
    | Error _ -> true
    | Ok _ -> false)

(* ---- Sharded run + merge byte-identity ---- *)

let merge_config =
  {
    Corpus.Gen.count = 9;
    seed = 3;
    sizes = { S.train = 32; valid = 16; test = 16 };
    families = F.all_families;
    noise_sweep = [ 0 ];
  }

let merge_options =
  {
    Corpus.Runner.teams = [ Contest.Teams.team10 ];
    jobs = 1;
    progress = false;
    time_limit = None;
    fuel = None;
    repair = false;
  }

let test_sharded_merge_identity () =
  with_temp ".lsmlc" @@ fun cpath ->
  Corpus.Gen.generate_file ~path:cpath merge_config;
  CF.with_file cpath @@ fun corpus ->
  let meta = Corpus.Runner.meta_of_options merge_options corpus in
  let n = 3 in
  let paths = List.init (n + 1) (fun _ -> temp_path ".journal") in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) paths)
    (fun () ->
      match paths with
      | unsharded_path :: shard_paths ->
          let journal = Resil.Journal.create ~path:unsharded_path ~meta () in
          let reference =
            Corpus.Runner.run ~journal merge_options corpus
          in
          List.iteri
            (fun i spath ->
              let shard = { Corpus.Shard.index = i + 1; count = n } in
              let journal =
                Resil.Journal.create ~shard:(i + 1, n) ~path:spath ~meta ()
              in
              ignore (Corpus.Runner.run ~shard ~journal merge_options corpus))
            shard_paths;
          with_temp ".journal" @@ fun merged_path ->
          (match
             Corpus.Runner.merge ~sources:shard_paths ~path:merged_path
               merge_options corpus
           with
          | Error e -> Alcotest.fail e
          | Ok rows ->
              check_bool "merged rows = unsharded rows" true (rows = reference);
              check_bool "merged journal bytes = unsharded journal bytes" true
                (slurp merged_path = slurp unsharded_path))
      | [] -> assert false)

let test_merge_validation () =
  with_temp ".lsmlc" @@ fun cpath ->
  Corpus.Gen.generate_file ~path:cpath merge_config;
  CF.with_file cpath @@ fun corpus ->
  let meta = Corpus.Runner.meta_of_options merge_options corpus in
  let n = 3 in
  let shard_paths = List.init n (fun _ -> temp_path ".journal") in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) shard_paths)
    (fun () ->
      List.iteri
        (fun i spath ->
          let shard = { Corpus.Shard.index = i + 1; count = n } in
          let journal =
            Resil.Journal.create ~shard:(i + 1, n) ~path:spath ~meta ()
          in
          ignore (Corpus.Runner.run ~shard ~journal merge_options corpus))
        shard_paths;
      let merge ?(options = merge_options) sources =
        with_temp ".journal" @@ fun out ->
        Corpus.Runner.merge ~sources ~path:out options corpus
      in
      let expect_error what = function
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "%s: merge accepted" what
      in
      expect_error "missing shard" (merge (List.filteri (fun i _ -> i < 2) shard_paths));
      expect_error "duplicate shard"
        (merge
           (match shard_paths with
           | s1 :: _ :: s3 :: _ -> [ s1; s1; s3 ]
           | _ -> assert false));
      expect_error "budget mismatch"
        (merge
           ~options:{ merge_options with Corpus.Runner.fuel = Some 5 }
           shard_paths))

let suites =
  [ ( "corpus",
      [ Alcotest.test_case "format round trip" `Quick test_format_roundtrip;
        Alcotest.test_case "format seek" `Quick test_format_seek;
        Alcotest.test_case "format truncation" `Quick test_format_truncation;
        Alcotest.test_case "format bad magic/version" `Quick
          test_format_bad_magic_version;
        Alcotest.test_case "shard parse" `Quick test_shard_parse;
        Alcotest.test_case "shard coverage" `Quick test_shard_coverage;
        Alcotest.test_case "families oracle" `Quick test_families_oracle;
        Alcotest.test_case "gen parse helpers" `Quick test_gen_parse_helpers;
        Alcotest.test_case "journal shard tags" `Quick test_journal_shard_tags;
        Alcotest.test_case "sharded merge identity" `Quick
          test_sharded_merge_identity;
        Alcotest.test_case "merge validation" `Quick test_merge_validation ] )
  ]
