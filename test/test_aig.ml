module G = Aig.Graph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Build a graph for a named two-input function and check its truth table. *)
let check_tt name build table =
  let g = G.create ~num_inputs:2 () in
  let a = G.input g 0 and b = G.input g 1 in
  G.set_output g (build g a b);
  List.iteri
    (fun i expected ->
      let ia = i land 1 = 1 and ib = i land 2 = 2 in
      check_bool
        (Printf.sprintf "%s(%b,%b)" name ia ib)
        expected
        (G.eval g [| ia; ib |]))
    table

let test_gates () =
  check_tt "and" G.and_ [ false; false; false; true ];
  check_tt "or" G.or_ [ false; true; true; true ];
  check_tt "xor" G.xor_ [ false; true; true; false ];
  check_tt "xnor" G.xnor_ [ true; false; false; true ]

let test_strashing () =
  let g = G.create ~num_inputs:2 () in
  let a = G.input g 0 and b = G.input g 1 in
  let x = G.and_ g a b in
  let y = G.and_ g b a in
  check_int "commutative strash" x y;
  check_int "one node" 1 (G.num_ands g);
  check_int "a AND a = a" a (G.and_ g a a);
  check_int "a AND NOT a = 0" G.const_false (G.and_ g a (G.lit_not a));
  check_int "a AND 1 = a" a (G.and_ g a G.const_true);
  check_int "a AND 0 = 0" G.const_false (G.and_ g a G.const_false);
  check_int "still one node" 1 (G.num_ands g)

let test_mux_levels () =
  let g = G.create ~num_inputs:3 () in
  let s = G.input g 0 and t1 = G.input g 1 and t0 = G.input g 2 in
  G.set_output g (G.mux g ~sel:s ~t1 ~t0);
  for i = 0 to 7 do
    let inp = [| i land 1 = 1; i land 2 = 2; i land 4 = 4 |] in
    let expected = if inp.(0) then inp.(1) else inp.(2) in
    check_bool (Printf.sprintf "mux %d" i) expected (G.eval g inp)
  done;
  check_int "mux levels" 2 (G.levels g)

let test_and_list_balanced () =
  let n = 64 in
  let g = G.create ~num_inputs:n () in
  let inputs = List.init n (G.input g) in
  G.set_output g (G.and_list g inputs);
  check_int "levels log2" 6 (G.levels g);
  check_int "nodes n-1" (n - 1) (G.num_ands g);
  check_bool "all ones" true (G.eval g (Array.make n true));
  let almost = Array.make n true in
  almost.(37) <- false;
  check_bool "one zero" false (G.eval g almost)

let test_import () =
  let sub = G.create ~num_inputs:2 () in
  G.set_output sub (G.xor_ sub (G.input sub 0) (G.input sub 1));
  let g = G.create ~num_inputs:2 () in
  let l = G.import g ~src:sub in
  G.set_output g (G.lit_not l);
  check_bool "imported xnor(1,1)" true (G.eval g [| true; true |]);
  check_bool "imported xnor(1,0)" false (G.eval g [| true; false |])

let random_graph st ~num_inputs ~num_nodes =
  let g = G.create ~num_inputs () in
  let pool = ref (List.init num_inputs (G.input g)) in
  let pick () =
    let l = List.nth !pool (Random.State.int st (List.length !pool)) in
    G.lit_notif l (Random.State.bool st)
  in
  for _ = 1 to num_nodes do
    let l = G.and_ g (pick ()) (pick ()) in
    pool := l :: !pool
  done;
  G.set_output g (pick ());
  g

let test_simulation_matches_eval () =
  let st = Random.State.make [| 42 |] in
  for _ = 1 to 20 do
    let g = random_graph st ~num_inputs:6 ~num_nodes:30 in
    let n = 100 in
    let columns = Aig.Sim.random_patterns st ~num_inputs:6 ~num_patterns:n in
    let out = Aig.Sim.simulate g columns in
    for j = 0 to n - 1 do
      let inp = Array.init 6 (fun i -> Words.get columns.(i) j) in
      check_bool "sim vs eval" (G.eval g inp) (Words.get out j)
    done
  done

let test_io_roundtrip () =
  let st = Random.State.make [| 7 |] in
  for _ = 1 to 10 do
    let g = random_graph st ~num_inputs:5 ~num_nodes:25 in
    let g' = Aig.Io.of_string (Aig.Io.to_string g) in
    check_int "same inputs" (G.num_inputs g) (G.num_inputs g');
    for i = 0 to 31 do
      let inp = Array.init 5 (fun k -> i lsr k land 1 = 1) in
      check_bool "same function" (G.eval g inp) (G.eval g' inp)
    done
  done

let test_io_errors () =
  let expect_failure name text =
    check_bool name true
      (try
         ignore (Aig.Io.of_string text);
         false
       with Aig.Io.Parse_error _ -> true)
  in
  expect_failure "empty" "";
  expect_failure "bad header" "aag x y\n";
  expect_failure "latches unsupported" "aag 1 0 1 1 0\n2\n2\n";
  expect_failure "multiple outputs" "aag 1 1 0 2 0\n2\n2\n2\n";
  expect_failure "truncated" "aag 2 1 0 1 1\n2\n4\n";
  expect_failure "gapped numbering" "aag 3 1 0 1 1\n2\n6\n4 6 2\n";
  expect_failure "huge header" "aag 999999999 1 0 1 1\n2\n4\n4 2 2\n";
  expect_failure "use before definition" "aag 3 1 0 1 2\n2\n6\n4 6 2\n6 2 2\n"

let test_cleanup_drops_dangling () =
  let g = G.create ~num_inputs:3 () in
  let a = G.input g 0 and b = G.input g 1 and c = G.input g 2 in
  let keep = G.and_ g a b in
  let _dangling = G.and_ g (G.and_ g b c) (G.lit_not a) in
  G.set_output g keep;
  check_int "before" 3 (G.num_ands g);
  check_int "reachable size" 1 (Aig.Opt.size g);
  let g' = Aig.Opt.cleanup g in
  check_int "after cleanup" 1 (G.num_ands g');
  check_bool "function preserved" true (G.eval g' [| true; true; false |])

let test_substitute () =
  let g = G.create ~num_inputs:2 () in
  let a = G.input g 0 and b = G.input g 1 in
  let x = G.and_ g a b in
  G.set_output g (G.or_ g x (G.lit_not a));
  (* Replace the AND(a,b) node by constant false: output = NOT a. *)
  let g' = Aig.Opt.substitute g ~var:(G.var_of_lit x) ~by:G.const_false in
  check_bool "subst(1,1)" false (G.eval g' [| true; true |]);
  check_bool "subst(0,0)" true (G.eval g' [| false; false |])

let test_remap_inputs () =
  (* f(x0, x1) = x0 AND NOT x1 lifted to a 5-input space as inputs 3, 1. *)
  let src = G.create ~num_inputs:2 () in
  G.set_output src (G.and_ src (G.input src 0) (G.lit_not (G.input src 1)));
  let lifted =
    Aig.Opt.remap_inputs src ~map:(fun i -> if i = 0 then 3 else 1) ~num_inputs:5
  in
  check_int "five inputs" 5 (G.num_inputs lifted);
  for v = 0 to 31 do
    let b = Array.init 5 (fun k -> v lsr k land 1 = 1) in
    check_bool "remapped semantics" (b.(3) && not b.(1)) (G.eval lifted b)
  done;
  Alcotest.check_raises "range check"
    (Invalid_argument "Opt.remap_inputs: mapped index out of range") (fun () ->
      ignore (Aig.Opt.remap_inputs src ~map:(fun _ -> 7) ~num_inputs:5))

let test_vote3 () =
  let constant v =
    let g = G.create ~num_inputs:1 () in
    G.set_output g (if v then G.const_true else G.const_false);
    g
  in
  let ident =
    let g = G.create ~num_inputs:1 () in
    G.set_output g (G.input g 0);
    g
  in
  let voted = Aig.Opt.vote3 (constant true) (constant false) ident in
  check_bool "vote follows ident(1)" true (G.eval voted [| true |]);
  check_bool "vote follows ident(0)" false (G.eval voted [| false |])

let test_approximate_budget () =
  let st = Random.State.make [| 5 |] in
  (* Parity of 16 inputs: every node is in the output cone (45 ANDs). *)
  let g = G.create ~num_inputs:16 () in
  let out =
    List.fold_left (G.xor_ g) G.const_false (List.init 16 (G.input g))
  in
  G.set_output g out;
  let budget = 20 in
  let g', stats = Aig.Approx.approximate ~num_patterns:256 st g ~budget in
  check_bool "met budget" true (G.num_ands g' <= budget);
  check_bool "did replace" true (stats.Aig.Approx.replacements > 0);
  check_int "stats after" (G.num_ands g') stats.Aig.Approx.nodes_after

let test_approx_keeps_easy_function () =
  (* A single AND of 4 inputs approximated with a generous budget must be
     untouched. *)
  let g = G.create ~num_inputs:4 () in
  G.set_output g (G.and_list g (List.init 4 (G.input g)));
  let st = Random.State.make [| 1 |] in
  let g', stats = Aig.Approx.approximate st g ~budget:10 in
  check_int "unchanged" 3 (G.num_ands g');
  check_int "no replacements" 0 stats.Aig.Approx.replacements

let test_balance_chain () =
  (* A left-leaning AND chain of 32 literals balances to log depth. *)
  let n = 32 in
  let g = G.create ~num_inputs:n () in
  let chain =
    List.fold_left (fun acc i -> G.and_ g acc (G.input g i)) (G.input g 0)
      (List.init (n - 1) (fun i -> i + 1))
  in
  G.set_output g chain;
  check_int "chain depth" (n - 1) (G.levels g);
  let b = Aig.Opt.balance g in
  check_int "balanced depth" 5 (G.levels b);
  check_int "same node count" (n - 1) (G.num_ands b);
  for _ = 1 to 50 do
    let st = Random.State.make [| 91 |] in
    let bits = Array.init n (fun _ -> Random.State.bool st) in
    check_bool "same function" (G.eval g bits) (G.eval b bits)
  done

let prop_balance_preserves_function =
  QCheck.Test.make ~count:100 ~name:"balance preserves function"
    (QCheck.make QCheck.Gen.(int_bound 1000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let g = random_graph st ~num_inputs:5 ~num_nodes:40 in
      let b = Aig.Opt.balance g in
      List.for_all
        (fun i ->
          let inp = Array.init 5 (fun k -> i lsr k land 1 = 1) in
          G.eval g inp = G.eval b inp)
        (List.init 32 Fun.id)
      && G.levels b <= G.levels g)

let test_multi_output () =
  (* Full adder: sum and carry share logic. *)
  let g = G.create ~num_inputs:3 () in
  let a = G.input g 0 and b = G.input g 1 and cin = G.input g 2 in
  let axb = G.xor_ g a b in
  let sum = G.xor_ g axb cin in
  let carry = G.or_ g (G.and_ g a b) (G.and_ g axb cin) in
  let m = Aig.Multi.create g [| sum; carry |] in
  check_int "outputs" 2 (Aig.Multi.num_outputs m);
  check_bool "sharing detected" true
    (Aig.Multi.size m < Aig.Multi.separate_size m);
  for v = 0 to 7 do
    let bits = Array.init 3 (fun k -> v lsr k land 1 = 1) in
    let ones = Array.fold_left (fun acc x -> acc + if x then 1 else 0) 0 bits in
    (match Aig.Multi.eval m bits with
    | [| s; c |] ->
        check_bool "sum" (ones land 1 = 1) s;
        check_bool "carry" (ones >= 2) c
    | _ -> Alcotest.fail "two outputs expected")
  done;
  (* AAG round-trip preserves both outputs. *)
  let back = Aig.Multi.of_string (Aig.Multi.to_string m) in
  for v = 0 to 7 do
    let bits = Array.init 3 (fun k -> v lsr k land 1 = 1) in
    check_bool "roundtrip" (Aig.Multi.eval m bits = Aig.Multi.eval back bits) true
  done;
  Alcotest.check_raises "empty outputs"
    (Invalid_argument "Multi.create: need at least one output") (fun () ->
      ignore (Aig.Multi.create g [||]))

(* Property: cleanup preserves the function. *)
let prop_cleanup =
  QCheck.Test.make ~count:100 ~name:"cleanup preserves function"
    (QCheck.make QCheck.Gen.(int_bound 1000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let g = random_graph st ~num_inputs:5 ~num_nodes:40 in
      let g' = Aig.Opt.cleanup g in
      List.for_all
        (fun i ->
          let inp = Array.init 5 (fun k -> i lsr k land 1 = 1) in
          G.eval g inp = G.eval g' inp)
        (List.init 32 Fun.id)
      && G.num_ands g' <= G.num_ands g)

let prop_import =
  QCheck.Test.make ~count:100 ~name:"import preserves function"
    (QCheck.make QCheck.Gen.(int_bound 1000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let src = random_graph st ~num_inputs:4 ~num_nodes:20 in
      let g = G.create ~num_inputs:4 () in
      G.set_output g (G.import g ~src);
      List.for_all
        (fun i ->
          let inp = Array.init 4 (fun k -> i lsr k land 1 = 1) in
          G.eval g inp = G.eval src inp)
        (List.init 16 Fun.id))

(* ------------------------------------------------------------------ *)
(* Simulation engine                                                   *)
(* ------------------------------------------------------------------ *)

module Engine = Aig.Sim.Engine

let prop_engine_matches_simulate =
  QCheck.Test.make ~count:100 ~name:"engine equals naive simulate/accuracy"
    (QCheck.make QCheck.Gen.(int_bound 1000))
    (fun seed ->
      let st = Random.State.make [| 0xe61; seed |] in
      let num_inputs = 1 + Random.State.int st 6 in
      let g =
        random_graph st ~num_inputs ~num_nodes:(1 + Random.State.int st 60)
      in
      let n = 1 + Random.State.int st 200 in
      let columns = Aig.Sim.random_patterns st ~num_inputs ~num_patterns:n in
      let expected = Words.random st n in
      let e = Engine.create () in
      Words.equal (Aig.Sim.simulate g columns) (Engine.simulate e g columns)
      && Aig.Sim.accuracy g columns expected
         = Engine.accuracy e g columns expected)

let prop_engine_incremental =
  QCheck.Test.make ~count:100 ~name:"incremental resim equals full resim"
    (QCheck.make QCheck.Gen.(int_bound 1000))
    (fun seed ->
      let st = Random.State.make [| 0x17c; seed |] in
      let num_inputs = 1 + Random.State.int st 5 in
      let g =
        random_graph st ~num_inputs ~num_nodes:(1 + Random.State.int st 40)
      in
      let n = 1 + Random.State.int st 150 in
      let columns = Aig.Sim.random_patterns st ~num_inputs ~num_patterns:n in
      let e = Engine.create () in
      ignore (Engine.simulate e g columns);
      (* Append new nodes to the already-simulated graph: the next run on
         the same (graph, columns) pair must take the incremental path and
         still agree with a from-scratch simulation. *)
      let pool =
        ref (List.init num_inputs (G.input g) @ [ G.output g ])
      in
      for _ = 1 to 1 + Random.State.int st 20 do
        let pick () =
          let l = List.nth !pool (Random.State.int st (List.length !pool)) in
          G.lit_notif l (Random.State.bool st)
        in
        let l = G.and_ g (pick ()) (pick ()) in
        pool := l :: !pool
      done;
      G.set_output g (List.hd !pool);
      let incr_out = Engine.simulate e g columns in
      let stats = Engine.stats e in
      Words.equal incr_out (Aig.Sim.simulate g columns)
      && stats.Engine.full_runs = 1
      && stats.Engine.incremental_runs = 1)

let prop_engine_early_exit =
  QCheck.Test.make ~count:100 ~name:"early-exit disagreement count is exact"
    (QCheck.make QCheck.Gen.(int_bound 1000))
    (fun seed ->
      let st = Random.State.make [| 0xee; seed |] in
      let num_inputs = 1 + Random.State.int st 5 in
      let g =
        random_graph st ~num_inputs ~num_nodes:(1 + Random.State.int st 40)
      in
      let n = 1 + Random.State.int st 200 in
      let columns = Aig.Sim.random_patterns st ~num_inputs ~num_patterns:n in
      let expected = Words.random st n in
      let e = Engine.create () in
      let exact =
        match Engine.disagreements e g columns ~expected with
        | Some d -> d
        | None -> -1
      in
      let limit = Random.State.int st (n + 1) in
      exact >= 0
      && exact = Words.popcount (Words.logxor (Aig.Sim.simulate g columns) expected)
      &&
      match Engine.disagreements ~limit e g columns ~expected with
      | Some d -> d = exact && exact <= limit
      | None -> exact > limit)

(* ------------------------------------------------------------------ *)
(* Batched (tiled) candidate evaluation                                *)
(* ------------------------------------------------------------------ *)

let test_batch_edges () =
  let st = Random.State.make [| 0xba7 |] in
  let num_inputs = 5 in
  let n = 300 (* several words, partial top word *) in
  let columns = Aig.Sim.random_patterns st ~num_inputs ~num_patterns:n in
  let expected = Words.random st n in
  let e = Engine.create () in
  (* Empty batch. *)
  check_int "empty batch" 0
    (Array.length (Engine.disagreements_batch e [||] columns ~expected));
  (* Single candidate: equals the scalar engine bit for bit. *)
  let g = random_graph st ~num_inputs ~num_nodes:30 in
  let accs = Engine.accuracy_batch e [| g |] columns ~expected in
  check_int "single candidate count" 1 (Array.length accs);
  Alcotest.(check (float 1e-12))
    "single candidate accuracy"
    (Aig.Sim.accuracy g columns expected)
    accs.(0);
  (* Early-exit caller-limit edge: limit = d keeps the exact count,
     limit = d - 1 prunes. *)
  let d =
    match Engine.disagreements_batch e [| g |] columns ~expected with
    | [| Some d |] -> d
    | _ -> Alcotest.fail "expected one exact count"
  in
  (match Engine.disagreements_batch ~limit:d e [| g |] columns ~expected with
  | [| Some d' |] -> check_int "limit = d stays exact" d d'
  | _ -> Alcotest.fail "limit = d must not prune");
  if d > 0 then begin
    match
      Engine.disagreements_batch ~limit:(d - 1) e [| g |] columns ~expected
    with
    | [| None |] -> ()
    | _ -> Alcotest.fail "limit = d - 1 must prune"
  end;
  (* Differing node counts in one batch, including a constant (0 ANDs). *)
  let const = G.create ~num_inputs () in
  G.set_output const G.const_true;
  let big = random_graph st ~num_inputs ~num_nodes:120 in
  let batch = [| const; g; big |] in
  let accs = Engine.accuracy_batch e batch columns ~expected in
  Array.iteri
    (fun i gi ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "ragged batch member %d" i)
        (Aig.Sim.accuracy gi columns expected)
        accs.(i))
    batch

let prop_batch_matches_sequential =
  QCheck.Test.make ~count:100 ~name:"batched evaluation equals sequential"
    (QCheck.make QCheck.Gen.(int_bound 1000))
    (fun seed ->
      let st = Random.State.make [| 0xbab; seed |] in
      let num_inputs = 1 + Random.State.int st 6 in
      let ncand = 1 + Random.State.int st 8 in
      let graphs =
        Array.init ncand (fun _ ->
            random_graph st ~num_inputs
              ~num_nodes:(1 + Random.State.int st 80))
      in
      let n = 1 + Random.State.int st 400 in
      let columns = Aig.Sim.random_patterns st ~num_inputs ~num_patterns:n in
      let expected = Words.random st n in
      let e = Engine.create () in
      let tile_words = 1 + Random.State.int st 6 in
      let chunk = 1 + Random.State.int st 4 in
      (* accuracy_batch: bit-identical to the scalar path per candidate. *)
      let accs = Engine.accuracy_batch ~tile_words e graphs columns ~expected in
      let accs_ok =
        Array.for_all Fun.id
          (Array.mapi
             (fun i g -> accs.(i) = Aig.Sim.accuracy g columns expected)
             graphs)
      in
      (* disagreements_batch: every Some is the exact count, every None
         exceeds the global minimum, and the (count, gates) fold picks
         the same winner as the sequential incumbent loop. *)
      let exact =
        Array.map
          (fun g ->
            Words.popcount (Words.logxor (Aig.Sim.simulate g columns) expected))
          graphs
      in
      let min_d = Array.fold_left min max_int exact in
      let counts =
        Engine.disagreements_batch ~tile_words ~chunk e graphs columns
          ~expected
      in
      let counts_ok =
        Array.for_all Fun.id
          (Array.mapi
             (fun i c ->
               match c with
               | Some d -> d = exact.(i)
               | None -> exact.(i) > min_d)
             counts)
      in
      let fold_winner of_i =
        let best = ref None in
        Array.iteri
          (fun i c ->
            match c with
            | None -> ()
            | Some d -> (
                let gates = G.num_ands graphs.(i) in
                match !best with
                | Some (bd, bg, _) when d > bd || (d = bd && gates >= bg) -> ()
                | _ -> best := Some (d, G.num_ands graphs.(i), of_i i)))
          counts;
        match !best with Some (_, _, i) -> i | None -> -1
      in
      let sequential_winner =
        let best = ref None in
        Array.iteri
          (fun i g ->
            let limit =
              match !best with None -> max_int | Some (d, _, _) -> d
            in
            match Engine.disagreements ~limit e g columns ~expected with
            | None -> ()
            | Some d -> (
                let gates = G.num_ands g in
                match !best with
                | Some (bd, bg, _) when d > bd || (d = bd && gates >= bg) -> ()
                | _ -> best := Some (d, gates, i)))
          graphs;
        match !best with Some (_, _, i) -> i | None -> -1
      in
      accs_ok && counts_ok && fold_winner Fun.id = sequential_winner)

let test_batch_gc_steady () =
  (* At steady state the tiled kernel must not allocate per tile: once
     the arenas are warm, a call spanning many tiles allocates exactly as
     many minor words as a call spanning one tile. *)
  let st = Random.State.make [| 0x6c |] in
  let num_inputs = 8 in
  let graphs =
    Array.init 6 (fun _ -> random_graph st ~num_inputs ~num_nodes:60)
  in
  let mk n =
    ( Aig.Sim.random_patterns st ~num_inputs ~num_patterns:n,
      Words.random st n )
  in
  let small_cols, small_exp = mk 62 (* one word: a single tile *) in
  let big_cols, big_exp = mk (62 * 16 * 12) (* 12 default-width tiles *) in
  let e = Engine.create () in
  let run cols exp = ignore (Engine.disagreements_batch e graphs cols ~expected:exp) in
  (* Warm both shapes so arena growth is behind us. *)
  run big_cols big_exp;
  run small_cols small_exp;
  let alloc f =
    let w0 = Gc.minor_words () in
    f ();
    Gc.minor_words () -. w0
  in
  let small = alloc (fun () -> run small_cols small_exp) in
  let big = alloc (fun () -> run big_cols big_exp) in
  Alcotest.(check (float 0.0)) "no per-tile allocation" small big

let prop_import_skips_unreachable =
  QCheck.Test.make ~count:100 ~name:"import copies only the reachable cone"
    (QCheck.make QCheck.Gen.(int_bound 1000))
    (fun seed ->
      let st = Random.State.make [| 0xdead; seed |] in
      let src = random_graph st ~num_inputs:4 ~num_nodes:40 in
      let g = G.create ~num_inputs:4 () in
      G.set_output g (G.import g ~src);
      G.num_ands g <= Aig.Opt.size src
      && List.for_all
           (fun i ->
             let inp = Array.init 4 (fun k -> i lsr k land 1 = 1) in
             G.eval g inp = G.eval src inp)
           (List.init 16 Fun.id))

let test_strash_stress () =
  (* Push the open-addressing table through several resizes, then verify
     every stored pair still dedups to its original node. *)
  let st = Random.State.make [| 0x5745 |] in
  let g = random_graph st ~num_inputs:10 ~num_nodes:10_000 in
  let before = G.num_ands g in
  let first = 1 + G.num_inputs g in
  for v = first to first + before - 1 do
    let f0, f1 = G.fanins g v in
    check_int "re-AND dedups" (G.lit_of_var v false) (G.and_ g f0 f1)
  done;
  check_int "no new nodes" before (G.num_ands g)

let test_size_hint () =
  let build hint =
    let g =
      match hint with
      | Some size_hint -> G.create ~size_hint ~num_inputs:6 ()
      | None -> G.create ~num_inputs:6 ()
    in
    let st = Random.State.make [| 0x517e |] in
    let pool = ref (List.init 6 (G.input g)) in
    for _ = 1 to 500 do
      let pick () =
        let l = List.nth !pool (Random.State.int st (List.length !pool)) in
        G.lit_notif l (Random.State.bool st)
      in
      pool := G.and_ g (pick ()) (pick ()) :: !pool
    done;
    G.set_output g (List.hd !pool);
    g
  in
  let plain = build None and hinted = build (Some 600) in
  check_int "same node count" (G.num_ands plain) (G.num_ands hinted);
  for i = 0 to 63 do
    let inp = Array.init 6 (fun k -> i lsr k land 1 = 1) in
    check_bool "same function" (G.eval plain inp) (G.eval hinted inp)
  done

let suites =
  [ ( "aig",
      [ Alcotest.test_case "gates" `Quick test_gates;
        Alcotest.test_case "strashing" `Quick test_strashing;
        Alcotest.test_case "mux and levels" `Quick test_mux_levels;
        Alcotest.test_case "balanced and_list" `Quick test_and_list_balanced;
        Alcotest.test_case "import" `Quick test_import;
        Alcotest.test_case "simulation vs eval" `Quick test_simulation_matches_eval;
        Alcotest.test_case "aag roundtrip" `Quick test_io_roundtrip;
        Alcotest.test_case "aag parse errors" `Quick test_io_errors;
        Alcotest.test_case "cleanup" `Quick test_cleanup_drops_dangling;
        Alcotest.test_case "substitute" `Quick test_substitute;
        Alcotest.test_case "remap inputs" `Quick test_remap_inputs;
        Alcotest.test_case "vote3" `Quick test_vote3;
        Alcotest.test_case "approximate budget" `Quick test_approximate_budget;
        Alcotest.test_case "approximate no-op" `Quick test_approx_keeps_easy_function;
        Alcotest.test_case "balance chain" `Quick test_balance_chain;
        Alcotest.test_case "multi-output" `Quick test_multi_output;
        Alcotest.test_case "strash resize stress" `Quick test_strash_stress;
        Alcotest.test_case "size hint" `Quick test_size_hint;
        Alcotest.test_case "batch edge cases" `Quick test_batch_edges;
        Alcotest.test_case "batch zero alloc per tile" `Quick
          test_batch_gc_steady ]
      @ List.map (QCheck_alcotest.to_alcotest ~long:false)
          [ prop_cleanup; prop_import; prop_balance_preserves_function;
            prop_engine_matches_simulate; prop_engine_incremental;
            prop_engine_early_exit; prop_batch_matches_sequential;
            prop_import_skips_unreachable ] ) ]
