(* CEGIS repair: monotonicity, determinism, exactness, and metamorphic
   invariance under the AIG optimization passes. *)

module G = Aig.Graph
module D = Data.Dataset

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let random_graph st ~num_inputs ~num_nodes =
  let g = G.create ~num_inputs () in
  let pool = ref (List.init num_inputs (G.input g)) in
  let pick () =
    let l = List.nth !pool (Random.State.int st (List.length !pool)) in
    G.lit_notif l (Random.State.bool st)
  in
  for _ = 1 to num_nodes do
    let l = G.and_ g (pick ()) (pick ()) in
    pool := l :: !pool
  done;
  G.set_output g (pick ());
  g

let random_dataset st ~num_inputs ~num_samples =
  D.create ~num_inputs
    (List.init num_samples (fun _ ->
         ( Array.init num_inputs (fun _ -> Random.State.bool st),
           Random.State.bool st )))

(* Every input vector exactly once: the care-set is the whole space, so
   a repaired-to-Exact circuit must compute the labelling function. *)
let full_dataset st ~num_inputs =
  D.create ~num_inputs
    (List.init (1 lsl num_inputs) (fun v ->
         ( Array.init num_inputs (fun k -> v lsr k land 1 = 1),
           Random.State.bool st )))

let train_accuracy g d =
  D.accuracy ~predicted:(Aig.Sim.simulate g (D.columns d)) d

(* Fast configuration for the properties: the circuits are tiny, so a
   few CEGIS iterations either converge or demonstrate the bound. *)
let quick = { Repair.default_config with max_iterations = 64; cex_batch = 8 }

let prop_monotone =
  QCheck.Test.make ~count:60 ~name:"repair never lowers training accuracy"
    (QCheck.make QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let st = Random.State.make [| 0x3e4a; seed |] in
      let num_inputs = 2 + Random.State.int st 4 in
      let g =
        random_graph st ~num_inputs ~num_nodes:(1 + Random.State.int st 40)
      in
      let d =
        random_dataset st ~num_inputs
          ~num_samples:(1 + Random.State.int st 60)
      in
      let before = train_accuracy g d in
      let repaired, stats = Repair.repair ~config:quick ~train:d g in
      let after = train_accuracy repaired d in
      after >= before
      && stats.Repair.train_errors_after <= stats.Repair.train_errors_before
      && G.num_ands (Aig.Opt.cleanup repaired) <= quick.Repair.gate_budget)

let prop_deterministic =
  QCheck.Test.make ~count:40 ~name:"repair deterministic in (seed, budget)"
    (QCheck.make QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let mk () =
        let st = Random.State.make [| 0x77b1; seed |] in
        let num_inputs = 2 + Random.State.int st 3 in
        let g = random_graph st ~num_inputs ~num_nodes:20 in
        let d = random_dataset st ~num_inputs ~num_samples:40 in
        Repair.repair ~config:quick ~train:d g
      in
      let g1, s1 = mk () in
      let g2, s2 = mk () in
      Aig.Io.to_string g1 = Aig.Io.to_string g2 && s1 = s2)

let prop_exact_is_proved =
  QCheck.Test.make ~count:25
    ~name:"repaired-to-Exact circuit is Proved equivalent to the spec"
    (QCheck.make QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let st = Random.State.make [| 0x51c9; seed |] in
      let num_inputs = 3 in
      let g = random_graph st ~num_inputs ~num_nodes:15 in
      let d = full_dataset st ~num_inputs in
      let repaired, stats = Repair.repair ~config:quick ~train:d g in
      (* Tiny full-care-set instances must converge under this budget. *)
      stats.Repair.stopped = Repair.Exact
      && Cec.equivalent repaired (Repair.spec_of_dataset d) = Cec.Proved)

(* Metamorphic: every function-preserving Opt pass applied after repair
   keeps the training accuracy of the repaired circuit. *)
let prop_opt_metamorphic =
  QCheck.Test.make ~count:30 ~name:"Opt passes preserve repaired accuracy"
    (QCheck.make QCheck.Gen.(int_bound 10_000))
    (fun seed ->
      let st = Random.State.make [| 0x2d8f; seed |] in
      let num_inputs = 2 + Random.State.int st 3 in
      let g = random_graph st ~num_inputs ~num_nodes:25 in
      let d = random_dataset st ~num_inputs ~num_samples:50 in
      let repaired, _ = Repair.repair ~config:quick ~train:d g in
      let acc = train_accuracy repaired d in
      let passes =
        [
          ("cleanup", Aig.Opt.cleanup repaired);
          ("balance", Aig.Opt.balance repaired);
          ( "remap roundtrip",
            Aig.Opt.remap_inputs repaired ~map:Fun.id ~num_inputs );
          ("vote3", Aig.Opt.vote3 repaired repaired repaired);
        ]
      in
      List.for_all (fun (_, g') -> train_accuracy g' d = acc) passes)

let test_fixes_single_error () =
  (* AND of two inputs, trained towards OR: repair on the full truth
     table must converge to OR exactly. *)
  let g = G.create ~num_inputs:2 () in
  G.set_output g (G.and_ g (G.input g 0) (G.input g 1));
  let d =
    D.create ~num_inputs:2
      [
        ([| false; false |], false);
        ([| true; false |], true);
        ([| false; true |], true);
        ([| true; true |], true);
      ]
  in
  let repaired, stats = Repair.repair ~train:d g in
  check_bool "stopped exact" true (stats.Repair.stopped = Repair.Exact);
  check_int "no errors left" 0 stats.Repair.train_errors_after;
  check_bool "errors decreased" true
    (stats.Repair.train_errors_after < stats.Repair.train_errors_before);
  List.iter
    (fun (a, b) ->
      check_bool
        (Printf.sprintf "or %b %b" a b)
        (a || b)
        (G.eval repaired [| a; b |]))
    [ (false, false); (true, false); (false, true); (true, true) ]

let test_majority_vote_ties () =
  (* Duplicate rows with conflicting labels: majority wins, a tie counts
     as label 0.  The care-set spec of this dataset is input 0 alone. *)
  let d =
    D.create ~num_inputs:1
      [
        ([| true |], true);
        ([| true |], true);
        ([| true |], false);
        ([| false |], true);
        ([| false |], false);
      ]
  in
  let spec = Repair.spec_of_dataset d in
  check_bool "majority true" true (G.eval spec [| true |]);
  check_bool "tie is false" false (G.eval spec [| false |])

let test_budget_holds_on_oversized_input () =
  (* A parity cone far over a toy budget: repair must return something
     within the budget no matter what. *)
  let st = Random.State.make [| 9 |] in
  let g = G.create ~num_inputs:12 () in
  G.set_output g
    (List.fold_left (G.xor_ g) G.const_false (List.init 12 (G.input g)));
  let d = random_dataset st ~num_inputs:12 ~num_samples:64 in
  let config = { quick with Repair.gate_budget = 20 } in
  let repaired, stats = Repair.repair ~config ~train:d g in
  check_bool "within budget" true (G.num_ands (Aig.Opt.cleanup repaired) <= 20);
  check_int "stats nodes match" (G.num_ands (Aig.Opt.cleanup repaired))
    stats.Repair.nodes_after

let test_input_mismatch_raises () =
  let g = G.create ~num_inputs:3 () in
  G.set_output g (G.input g 0);
  let d = D.create ~num_inputs:2 [ ([| true; false |], true) ] in
  check_bool "raises" true
    (match Repair.repair ~train:d g with
    | exception Invalid_argument _ -> true
    | _ -> false)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let suites =
  [
    ( "repair",
      [
        Alcotest.test_case "fixes single error" `Quick test_fixes_single_error;
        Alcotest.test_case "majority vote ties" `Quick test_majority_vote_ties;
        Alcotest.test_case "budget holds" `Quick
          test_budget_holds_on_oversized_input;
        Alcotest.test_case "input mismatch" `Quick test_input_mismatch_raises;
      ] );
    qsuite "repair properties"
      [
        prop_monotone;
        prop_deterministic;
        prop_exact_is_proved;
        prop_opt_metamorphic;
      ];
  ]
