module P = Parallel.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_deque_claims_each_once () =
  let d = Parallel.Deque.of_array (Array.init 10 Fun.id) in
  check_bool "not empty" false (Parallel.Deque.is_empty d);
  (* Interleave the two ends: every element must come out exactly once,
     pops from the bottom, steals from the top. *)
  Alcotest.(check (option int)) "steal takes top" (Some 0) (Parallel.Deque.steal d);
  Alcotest.(check (option int)) "pop takes bottom" (Some 9) (Parallel.Deque.pop d);
  let rec collect acc =
    match Parallel.Deque.pop d with
    | Some x -> collect (x :: acc)
    | None -> acc
  in
  let rest = collect [] in
  check_int "remaining count" 8 (List.length rest);
  Alcotest.(check (list int)) "each element once" [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    (List.sort compare rest);
  check_bool "drained" true (Parallel.Deque.is_empty d);
  Alcotest.(check (option int)) "steal on empty" None (Parallel.Deque.steal d)

let test_run_preserves_order () =
  P.with_pool ~jobs:4 (fun pool ->
      check_int "pool size" 4 (P.size pool);
      let n = 1000 in
      let out = P.run pool ~n (fun i -> i * i) in
      Alcotest.(check (array int)) "results in task order"
        (Array.init n (fun i -> i * i))
        out;
      (* The pool must be reusable for a second batch. *)
      let out = P.map pool String.length [ "a"; "bb"; ""; "cccc" ] in
      Alcotest.(check (list int)) "second batch" [ 1; 2; 0; 4 ] out)

let test_jobs_counts_agree () =
  (* A task mixing per-index Random.State work: any jobs count must produce
     the identical result list. *)
  let work st x = (x * 10000) + Random.State.int st 1000 in
  let inputs = List.init 64 Fun.id in
  let at jobs =
    P.with_pool ~jobs (fun pool -> P.map_seeded pool ~seed:7 work inputs)
  in
  Alcotest.(check (list int)) "jobs=1 equals jobs=4" (at 1) (at 4);
  Alcotest.(check (list int)) "jobs=4 equals jobs=3" (at 4) (at 3)

let test_exception_propagation () =
  P.with_pool ~jobs:4 (fun pool ->
      let executed = Atomic.make 0 in
      let raised =
        try
          ignore
            (P.run pool ~n:64 (fun i ->
                 Atomic.incr executed;
                 if i mod 7 = 3 then failwith (Printf.sprintf "boom %d" i);
                 i));
          None
        with Failure msg -> Some msg
      in
      (* Lowest-index failure wins regardless of schedule; every task still
         ran to completion. *)
      Alcotest.(check (option string)) "first failing index" (Some "boom 3") raised;
      check_int "all tasks executed" 64 (Atomic.get executed))

let test_sequential_fallbacks () =
  (* jobs=1 spawns no domains and still works. *)
  P.with_pool ~jobs:1 (fun pool ->
      check_int "clamped size" 1 (P.size pool);
      Alcotest.(check (list int)) "sequential map" [ 2; 4 ]
        (P.map pool (fun x -> 2 * x) [ 1; 2 ]));
  (* A task calling run on its own pool degrades to in-place execution
     instead of deadlocking. *)
  P.with_pool ~jobs:2 (fun pool ->
      let out =
        P.run pool ~n:4 (fun i ->
            Array.fold_left ( + ) 0 (P.run pool ~n:3 (fun j -> (10 * i) + j)))
      in
      Alcotest.(check (array int)) "nested run" [| 3; 33; 63; 93 |] out);
  (* After shutdown the pool still answers, sequentially. *)
  let pool = P.create ~jobs:2 () in
  P.shutdown pool;
  Alcotest.(check (list int)) "post-shutdown map" [ 1 ]
    (P.map pool Fun.id [ 1 ]);
  P.shutdown pool

let test_pool_reusable_after_failure () =
  P.with_pool ~jobs:3 (fun pool ->
      (* A batch whose task raises must not poison the pool. *)
      (try
         ignore
           (P.run pool ~n:8 (fun i ->
                if i = 5 then failwith "die";
                i))
       with Failure _ -> ());
      Alcotest.(check (array int)) "second batch after failure"
        (Array.init 16 (fun i -> 3 * i))
        (P.run pool ~n:16 (fun i -> 3 * i));
      (* Nested run issued from inside an exception handler still takes
         the in-place fallback instead of deadlocking. *)
      let out =
        P.run pool ~n:4 (fun i ->
            try
              if i mod 2 = 0 then failwith "inner";
              i
            with Failure _ ->
              Array.fold_left ( + ) 0 (P.run pool ~n:3 (fun j -> (10 * i) + j)))
      in
      Alcotest.(check (array int)) "nested run in handler" [| 3; 1; 63; 3 |] out)

let test_run_isolated () =
  P.with_pool ~jobs:4 (fun pool ->
      let out =
        P.run_isolated pool ~n:10 (fun i ->
            if i mod 3 = 0 then failwith (Printf.sprintf "boom %d" i);
            i)
      in
      check_int "every slot reported" 10 (Array.length out);
      Array.iteri
        (fun i r ->
          match r with
          | Ok v ->
              check_bool "ok slot placement" true (i mod 3 <> 0);
              check_int "ok slot value" i v
          | Error (Failure msg, _) ->
              check_bool "error slot placement" true (i mod 3 = 0);
              Alcotest.(check string) "error carried" (Printf.sprintf "boom %d" i) msg
          | Error _ -> Alcotest.fail "unexpected exception kind")
        out;
      (* Isolation does not retry or skip the healthy tasks. *)
      let oks = Array.to_list out |> List.filter (function Ok _ -> true | _ -> false) in
      check_int "healthy tasks completed" 6 (List.length oks))

let test_cv_pool_equivalence () =
  let inst =
    Benchgen.Suite.instantiate
      ~sizes:{ Benchgen.Suite.train = 300; valid = 150; test = 150 }
      ~seed:11
      (Benchgen.Suite.benchmark 30)
  in
  let train d =
    Dtree.Train.train
      { Dtree.Train.default_params with Dtree.Train.max_depth = Some 6 }
      d
  in
  let score = Dtree.Train.accuracy in
  let cv pool =
    Contest.Cv.accuracy ?pool
      ~rng:(Random.State.make [| 5 |])
      ~k:4 ~train ~score inst.Benchgen.Suite.train
  in
  let sequential = cv None in
  let parallel = P.with_pool ~jobs:4 (fun pool -> cv (Some pool)) in
  Alcotest.(check (float 0.0)) "parallel folds identical" sequential parallel

let test_run_suite_jobs_identical () =
  (* The issue's hard requirement: run_suite ~jobs:1 and ~jobs:4 produce
     bit-identical metrics on a 4-benchmark slice. *)
  let config =
    {
      Contest.Experiments.sizes = { Benchgen.Suite.train = 120; valid = 60; test = 60 };
      seed = 3;
      ids = [ 0; 30; 74; 85 ];
    }
  in
  let at jobs =
    Contest.Experiments.run_suite ~progress:false
      ~teams:[ Contest.Teams.team10; Contest.Teams.team2 ]
      ~jobs config
  in
  let r1 = at 1 and r4 = at 4 in
  check_int "teams" 2 (List.length r4.Contest.Experiments.per_team);
  List.iter
    (fun (_, ms) -> check_int "benchmarks per team" 4 (List.length ms))
    r4.Contest.Experiments.per_team;
  check_bool "per-team metrics bit-identical" true
    (r1.Contest.Experiments.per_team = r4.Contest.Experiments.per_team)

let suites =
  [ ( "parallel",
      [ Alcotest.test_case "deque claims" `Quick test_deque_claims_each_once;
        Alcotest.test_case "order preserved" `Quick test_run_preserves_order;
        Alcotest.test_case "jobs counts agree" `Quick test_jobs_counts_agree;
        Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
        Alcotest.test_case "sequential fallbacks" `Quick test_sequential_fallbacks;
        Alcotest.test_case "reusable after failure" `Quick
          test_pool_reusable_after_failure;
        Alcotest.test_case "run isolated" `Quick test_run_isolated;
        Alcotest.test_case "cv pool equivalence" `Quick test_cv_pool_equivalence;
        Alcotest.test_case "run_suite jobs identical" `Slow
          test_run_suite_jobs_identical ] ) ]
